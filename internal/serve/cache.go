// Package serve is the serving layer over the solver library: long-lived
// sessions that reuse decode/encode buffers across solves, a content-hash
// instance cache so clients can re-post the same graph cheaply, a bounded
// worker pool with opportunistic request batching, and the HTTP/JSON
// surface exposed by cmd/bmatchd.
package serve

import (
	"container/list"
	"sync"
)

// lru is a minimal string-keyed LRU used for instances, solve results, and
// payload aliases. Not safe for concurrent use; Cache serializes access.
type lru struct {
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

func (l *lru) get(k string) (any, bool) {
	el, ok := l.m[k]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (l *lru) add(k string, v any) {
	if el, ok := l.m[k]; ok {
		el.Value.(*lruEntry).val = v
		l.ll.MoveToFront(el)
		return
	}
	l.m[k] = l.ll.PushFront(&lruEntry{key: k, val: v})
	for l.ll.Len() > l.cap {
		back := l.ll.Back()
		delete(l.m, back.Value.(*lruEntry).key)
		l.ll.Remove(back)
	}
}

func (l *lru) len() int { return l.ll.Len() }

// CacheConfig bounds the shared cache. Zero values select the defaults.
type CacheConfig struct {
	// MaxInstances bounds decoded graphs kept resident (default 32).
	MaxInstances int
	// MaxResults bounds cached solve results (default 256).
	MaxResults int
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.MaxInstances <= 0 {
		c.MaxInstances = 32
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 256
	}
	return c
}

// CacheStats are the cache's observability counters.
type CacheStats struct {
	Instances      int   `json:"instances"`
	Results        int   `json:"results"`
	InstanceHits   int64 `json:"instanceHits"`
	InstanceMisses int64 `json:"instanceMisses"`
	ResultHits     int64 `json:"resultHits"`
	ResultMisses   int64 `json:"resultMisses"`
}

// Cache is the shared instance/result cache. Instances are keyed by the
// content hash of their canonical binary graphio encoding, so the same
// graph posted in text and binary form shares one entry; an alias table
// maps raw payload hashes to canonical keys so repeat posts skip both
// parsing and re-encoding. Safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	instances *lru // canonical key → *Instance
	results   *lru // result key → *Result
	aliases   *lru // payload hash → canonical key
	stats     CacheStats
}

// NewCache returns a cache with the given bounds.
func NewCache(cfg CacheConfig) *Cache {
	cfg = cfg.withDefaults()
	return &Cache{
		instances: newLRU(cfg.MaxInstances),
		results:   newLRU(cfg.MaxResults),
		// Aliases are tiny (two hashes); keep more of them than instances
		// so re-posts in several formats stay cheap.
		aliases: newLRU(4 * cfg.MaxInstances),
	}
}

// lookupPayload resolves a raw payload hash to a cached instance, if the
// alias and the instance it points at are both still resident.
func (c *Cache) lookupPayload(payloadKey string) (*Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ck, ok := c.aliases.get(payloadKey); ok {
		if inst, ok := c.instances.get(ck.(string)); ok {
			c.stats.InstanceHits++
			return inst.(*Instance), true
		}
	}
	c.stats.InstanceMisses++
	return nil, false
}

// storeInstance records inst under its canonical key and links the raw
// payload hash to it. It returns the resident copy, which may be an
// existing entry when two payloads decode to the same graph.
func (c *Cache) storeInstance(payloadKey string, inst *Instance) *Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.instances.get(inst.Key); ok {
		inst = cur.(*Instance)
	} else {
		c.instances.add(inst.Key, inst)
	}
	c.aliases.add(payloadKey, inst.Key)
	return inst
}

// addAlias links an additional payload hash to a resident instance key.
func (c *Cache) addAlias(payloadKey, instanceKey string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aliases.add(payloadKey, instanceKey)
}

func (c *Cache) lookupResult(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.results.get(key); ok {
		c.stats.ResultHits++
		return v.(*Result), true
	}
	c.stats.ResultMisses++
	return nil, false
}

func (c *Cache) storeResult(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results.add(key, res)
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Instances = c.instances.len()
	s.Results = c.results.len()
	return s
}
