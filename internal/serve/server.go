package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// ServerConfig sizes the HTTP surface. Zero values select the defaults.
type ServerConfig struct {
	Pool PoolConfig
	// MaxBodyBytes bounds accepted request bodies (default 256 MiB).
	MaxBodyBytes int64
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	return c
}

// Server is the bmatchd HTTP surface:
//
//	POST /v1/solve?algo=approx|max|maxw|greedy&eps=&seed=&paper=&nocache=
//	     body: instance in graphio text or binary format (sniffed)
//	     response: JSON result; the matched-edge array is streamed
//	GET  /v1/healthz
//	GET  /v1/stats
type Server struct {
	cfg     ServerConfig
	pool    *Pool
	mux     *http.ServeMux
	started time.Time
}

// NewServer builds a server and its worker pool.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.Pool),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the server's worker pool (for stats and tests).
func (s *Server) Pool() *Pool { return s.pool }

// Close stops the worker pool; queued requests still complete.
func (s *Server) Close() { s.pool.Close() }

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	spec, err := specFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.pool.DecodeFrom(r.Body, s.cfg.MaxBodyBytes)
	switch {
	case errors.Is(err, ErrDecodeBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrBodyTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.pool.Submit(r.Context(), inst, spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client gave up while the request was queued.
		writeError(w, http.StatusRequestTimeout, err)
		return
	case err != nil:
		// The request was already validated, so what remains (solver
		// panics, internal failures) is the server's fault, not the
		// client's.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	streamResult(w, res)
}

// specFromQuery parses and validates the solve parameters; validation at
// the request boundary mirrors bmatch.Options.Validate.
func specFromQuery(r *http.Request) (Spec, error) {
	q := r.URL.Query()
	spec := Spec{Algo: AlgoMaxWeight}
	if a := q.Get("algo"); a != "" {
		spec.Algo = Algo(a)
	}
	if e := q.Get("eps"); e != "" {
		v, err := strconv.ParseFloat(e, 64)
		if err != nil {
			return spec, fmt.Errorf("serve: bad eps %q", e)
		}
		spec.Eps = v
	}
	if sd := q.Get("seed"); sd != "" {
		v, err := strconv.ParseInt(sd, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("serve: bad seed %q", sd)
		}
		spec.Seed = v
	}
	if p := q.Get("paper"); p != "" {
		v, err := strconv.ParseBool(p)
		if err != nil {
			return spec, fmt.Errorf("serve: bad paper %q", p)
		}
		spec.PaperConstants = v
	}
	if nc := q.Get("nocache"); nc != "" {
		v, err := strconv.ParseBool(nc)
		if err != nil {
			return spec, fmt.Errorf("serve: bad nocache %q", nc)
		}
		spec.NoCache = v
	}
	return spec, spec.Validate()
}

// streamResult writes the result as one JSON object, streaming the
// matched-edge array in chunks so multi-million-edge matchings flow to the
// client without a response-sized buffer.
func streamResult(w http.ResponseWriter, res *Result) {
	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, `{"algo":`...)
	buf = appendJSONString(buf, string(res.Algo))
	buf = append(buf, `,"instance":`...)
	buf = appendJSONString(buf, res.Instance)
	buf = append(buf, `,"n":`...)
	buf = strconv.AppendInt(buf, int64(res.N), 10)
	buf = append(buf, `,"m":`...)
	buf = strconv.AppendInt(buf, int64(res.M), 10)
	buf = append(buf, `,"size":`...)
	buf = strconv.AppendInt(buf, int64(res.Size), 10)
	buf = append(buf, `,"weight":`...)
	buf = strconv.AppendFloat(buf, res.Weight, 'g', -1, 64)
	buf = append(buf, `,"feasible":`...)
	buf = strconv.AppendBool(buf, res.Feasible)
	buf = append(buf, `,"cached":`...)
	buf = strconv.AppendBool(buf, res.FromCache)
	if res.Algo == AlgoApprox {
		buf = append(buf, `,"cert":{"dualBound":`...)
		buf = strconv.AppendFloat(buf, res.DualBound, 'g', -1, 64)
		buf = append(buf, `,"fracValue":`...)
		buf = strconv.AppendFloat(buf, res.FracValue, 'g', -1, 64)
		buf = append(buf, `},"mpc":{"compressionSteps":`...)
		buf = strconv.AppendInt(buf, int64(res.CompressionSteps), 10)
		buf = append(buf, `,"rounds":`...)
		buf = strconv.AppendInt(buf, int64(res.MPCRounds), 10)
		buf = append(buf, `,"maxMachineEdges":`...)
		buf = strconv.AppendInt(buf, int64(res.MaxMachineEdges), 10)
		buf = append(buf, '}')
	}
	buf = append(buf, `,"elapsedMs":`...)
	buf = strconv.AppendFloat(buf, float64(res.Elapsed)/float64(time.Millisecond), 'g', 6, 64)
	buf = append(buf, `,"edges":[`...)
	for i, e := range res.Edges {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(e), 10)
		if len(buf) >= 1<<16-16 {
			if _, err := w.Write(buf); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			buf = buf[:0]
		}
	}
	buf = append(buf, `]}`...)
	buf = append(buf, '\n')
	w.Write(buf)
}

// appendJSONString appends s as a JSON string. Keys here are hex hashes and
// algo names, so plain quoting suffices; anything unusual goes through the
// encoder.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == '"' || s[i] == '\\' || s[i] >= 0x80 {
			enc, _ := json.Marshal(s)
			return append(buf, enc...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ok\":true,\"uptimeSec\":%.0f}\n", time.Since(s.started).Seconds())
}

// statsBody is the /v1/stats response.
type statsBody struct {
	Pool  PoolStats  `json:"pool"`
	Cache CacheStats `json:"cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statsBody{
		Pool:  s.pool.Stats(),
		Cache: s.pool.Cache().Stats(),
	})
}
