// Package core wires the substrates into the paper's three headline
// results:
//
//   - ConstApprox — Theorem 3.1: Θ(1)-approximate unweighted b-matching in
//     O(log log d̄) MPC compression steps (FullMPC → Lemma 3.3 rounding →
//     greedy fill).
//   - OnePlusEpsUnweighted — Theorem 4.1: (1+ε)-approximate unweighted
//     b-matching (ConstApprox, then Section 4 augmentation).
//   - OnePlusEpsWeighted — Theorem 5.1: (1+ε)-approximate weighted
//     b-matching (greedy start, then Section 5 augmentation with conflict
//     resolution).
package core

import (
	"context"

	"repro/internal/augment"
	"repro/internal/frac"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/round"
	"repro/internal/weighted"
)

// ConstApproxResult reports the Theorem 3.1 pipeline's output and
// measurements.
type ConstApproxResult struct {
	M *matching.BMatching
	// Frac carries the FullMPC measurements (compression steps, MPC rounds,
	// machine loads, per-iteration degree series).
	Frac *frac.FullResult
	// FracValue is Σx of the 0.05-tight fractional solution.
	FracValue float64
	// DualBound certifies OPT ≤ DualBound (Lemma 3.3 duality), so the
	// returned matching is at least |M|/DualBound-approximate — a
	// per-instance certificate, not just an asymptotic promise.
	DualBound float64
}

// ConstApprox runs the Theorem 3.1 pipeline.
func ConstApprox(g *graph.Graph, b graph.Budgets, params frac.MPCParams, r *rng.RNG) (*ConstApproxResult, error) {
	return ConstApproxCtx(context.Background(), g, b, params, r)
}

// ConstApproxCtx is ConstApprox with cooperative cancellation, threaded
// into the FullMPC compression loop, the simulator's superstep boundaries,
// and the rounding repeats. A cancelled solve returns ctx's error and no
// partial result; an uncancelled run is bit-identical to ConstApprox.
func ConstApproxCtx(ctx context.Context, g *graph.Graph, b graph.Budgets, params frac.MPCParams, r *rng.RNG) (*ConstApproxResult, error) {
	if err := b.Validate(g); err != nil {
		return nil, err
	}
	p := frac.BMatchingProblem(g, b)
	full, err := p.FullMPCCtx(ctx, params, r.Split())
	if err != nil {
		return nil, err
	}
	rp := round.DefaultParams()
	rp.Workers = params.Workers
	m, err := round.RoundCtx(ctx, g, b, full.X, rp, r.Split())
	if err != nil {
		return nil, err
	}
	// The sampling intentionally leaves constant-factor slack; greedy fill
	// recovers most of it and cannot hurt.
	round.GreedyFill(m, false)
	return &ConstApproxResult{
		M:         m,
		Frac:      full,
		FracValue: frac.Value(full.X),
		DualBound: p.DualBound(full.X, 0.05),
	}, nil
}

// OnePlusEpsUnweighted runs the Theorem 4.1 pipeline: the Θ(1) MPC start
// followed by layered-graph augmentation until (1+ε)-optimality.
func OnePlusEpsUnweighted(g *graph.Graph, b graph.Budgets, eps float64, mpcParams frac.MPCParams, augParams augment.Params, r *rng.RNG) (*augment.Result, error) {
	return OnePlusEpsUnweightedCtx(context.Background(), g, b, eps, mpcParams, augParams, r)
}

// OnePlusEpsUnweightedCtx is OnePlusEpsUnweighted with cooperative
// cancellation through both stages (MPC start and augmentation sweeps).
func OnePlusEpsUnweightedCtx(ctx context.Context, g *graph.Graph, b graph.Budgets, eps float64, mpcParams frac.MPCParams, augParams augment.Params, r *rng.RNG) (*augment.Result, error) {
	start, err := ConstApproxCtx(ctx, g, b, mpcParams, r.Split())
	if err != nil {
		return nil, err
	}
	if augParams.Eps <= 0 {
		augParams.Eps = eps
	}
	if augParams.Workers == 0 {
		augParams.Workers = mpcParams.Workers
	}
	return augment.OnePlusEpsCtx(ctx, g, b, start.M, augParams, r.Split())
}

// OnePlusEpsWeighted runs the Theorem 5.1 pipeline.
func OnePlusEpsWeighted(g *graph.Graph, b graph.Budgets, eps float64, params weighted.Params, r *rng.RNG) (*weighted.Result, error) {
	return OnePlusEpsWeightedCtx(context.Background(), g, b, eps, params, r)
}

// OnePlusEpsWeightedCtx is OnePlusEpsWeighted with cooperative cancellation
// checked at every driver round.
func OnePlusEpsWeightedCtx(ctx context.Context, g *graph.Graph, b graph.Budgets, eps float64, params weighted.Params, r *rng.RNG) (*weighted.Result, error) {
	if err := b.Validate(g); err != nil {
		return nil, err
	}
	if params.Eps <= 0 {
		params.Eps = eps
	}
	return weighted.OnePlusEpsWeightedCtx(ctx, g, b, nil, params, r.Split())
}
