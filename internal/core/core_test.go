package core

import (
	"testing"
	"testing/quick"

	"repro/internal/augment"
	"repro/internal/exact"
	"repro/internal/frac"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/weighted"
)

func TestConstApproxPipeline(t *testing.T) {
	r := rng.New(1)
	g := graph.Gnm(300, 6000, r.Split())
	b := graph.RandomBudgets(300, 1, 4, r.Split())
	res, err := ConstApprox(g, b, frac.PracticalParams(), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.M.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.Frac.Converged {
		t.Fatal("fractional solve did not converge")
	}
	if res.FracValue <= 0 || res.DualBound < res.FracValue-1e-9 {
		t.Fatalf("certificate inverted: Σx=%v dual=%v", res.FracValue, res.DualBound)
	}
	// |M| ≤ OPT ≤ DualBound.
	if float64(res.M.Size()) > res.DualBound+1e-9 {
		t.Fatalf("matching %d exceeds its own upper bound %v", res.M.Size(), res.DualBound)
	}
}

func TestConstApproxAgainstExactBipartite(t *testing.T) {
	r := rng.New(2)
	g := graph.Bipartite(60, 60, 700, r.Split())
	b := graph.RandomBudgets(120, 1, 3, r.Split())
	res, err := ConstApprox(g, b, frac.PracticalParams(), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := exact.MaxBipartite(g, b)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy fill makes the output maximal, so ratio ≥ 1/2 is guaranteed;
	// the pipeline typically does much better.
	if 2*res.M.Size() < opt {
		t.Fatalf("ratio below maximality guarantee: %d vs opt %d", res.M.Size(), opt)
	}
}

func TestConstApproxRejectsInvalidBudgets(t *testing.T) {
	g := graph.Path(4)
	if _, err := ConstApprox(g, graph.Budgets{1, 1}, frac.PracticalParams(), rng.New(1)); err == nil {
		t.Fatal("short budgets accepted")
	}
}

func TestConstApproxEmptyGraph(t *testing.T) {
	g := graph.MustNew(10, nil)
	res, err := ConstApprox(g, graph.UniformBudgets(10, 2), frac.PracticalParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Size() != 0 {
		t.Fatal("nonempty matching on empty graph")
	}
}

func TestOnePlusEpsUnweightedPipeline(t *testing.T) {
	r := rng.New(3)
	g := graph.Bipartite(25, 25, 250, r.Split())
	b := graph.RandomBudgets(50, 1, 2, r.Split())
	opt, err := exact.MaxBipartite(g, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OnePlusEpsUnweighted(g, b, 0.25, frac.PracticalParams(),
		augment.DefaultParams(0.25), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.M.Size()) < float64(opt)/1.25 {
		t.Fatalf("pipeline size %d vs opt %d", res.M.Size(), opt)
	}
	// The Θ(1) start should leave the augmentation phase little to do:
	// SizeStart is already maximal, SizeEnd ≥ SizeStart.
	if res.SizeEnd < res.SizeStart {
		t.Fatal("augmentation decreased size")
	}
}

func TestOnePlusEpsWeightedPipeline(t *testing.T) {
	r := rng.New(4)
	g := graph.BipartiteWeighted(15, 15, 120, 1, 8, r.Split())
	b := graph.RandomBudgets(30, 1, 2, r.Split())
	optW, err := exact.MaxWeightBipartite(g, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OnePlusEpsWeighted(g, b, 0.25, weighted.DefaultParams(0.25), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Weight() < optW/1.3 {
		t.Fatalf("pipeline weight %v vs opt %v", res.M.Weight(), optW)
	}
	if err := res.M.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOnePlusEpsWeightedRejectsInvalidBudgets(t *testing.T) {
	g := graph.Path(4)
	if _, err := OnePlusEpsWeighted(g, graph.Budgets{-1, 1, 1, 1}, 0.5,
		weighted.DefaultParams(0.5), rng.New(1)); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// Property: the full unweighted pipeline always produces a valid matching
// no smaller than greedy's half-guarantee.
func TestPipelineValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		g := graph.Gnm(40, 200, r.Split())
		b := graph.RandomBudgets(40, 1, 3, r.Split())
		res, err := ConstApprox(g, b, frac.PracticalParams(), r.Split())
		if err != nil {
			return false
		}
		return res.M.Validate() == nil && float64(res.M.Size()) <= res.DualBound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Determinism across the whole pipeline.
func TestPipelineDeterminism(t *testing.T) {
	g := graph.Gnm(100, 1500, rng.New(9))
	b := graph.UniformBudgets(100, 2)
	a, err := ConstApprox(g, b, frac.PracticalParams(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ConstApprox(g, b, frac.PracticalParams(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ae, ce := a.M.Edges(), c.M.Edges()
	if len(ae) != len(ce) {
		t.Fatal("pipeline nondeterministic (size)")
	}
	for i := range ae {
		if ae[i] != ce[i] {
			t.Fatal("pipeline nondeterministic (edges)")
		}
	}
}
