// Package par holds the worker-pool primitives shared by the simulator and
// the data-structure layers. It is a leaf package — it must not import
// anything from this repository — so substrate packages like graph can
// parallelize hot paths without depending on the MPC simulator.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// PoolSize resolves a requested worker count to the effective pool width:
// values ≤ 0 select GOMAXPROCS.
func PoolSize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ParallelFor runs f(0), ..., f(n-1) on a pool of workers goroutines
// (workers ≤ 0 selects GOMAXPROCS) and returns when all calls completed.
// Panics inside f are collected and one is re-raised in the caller's
// goroutine after the remaining items ran, so a failure behaves like an
// ordinary panic regardless of which worker hit it. Iteration order is
// unspecified; f must be safe for the concurrency it is given.
func ParallelFor(workers, n int, f func(int)) {
	forEach(workers, n, f)
}

// ParallelForBlocks runs f over the blocks of [0, n) cut every grain
// indices: f(0, grain), f(grain, 2·grain), ..., f(·, n). It is the blocked
// counterpart of ParallelFor for bandwidth-bound loops — one scheduling
// claim per block instead of one atomic per index.
//
// Determinism contract: block boundaries are derived from n and grain
// ONLY, never from workers or GOMAXPROCS, so any per-block partial results
// a caller collects can be combined in ascending block order and the
// combined result is bit-identical for every worker count. Only the
// scheduling width adapts to the machine: min(workers, GOMAXPROCS,
// blocks) goroutines (workers ≤ 0 selects GOMAXPROCS), which also gives
// small inputs (n ≤ grain) a free serial fast path. grain ≤ 0 selects a
// single block. Panic semantics are those of ParallelFor.
func ParallelForBlocks(workers, n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 || grain > n {
		grain = n
	}
	blocks := (n + grain - 1) / grain
	width := PoolSize(workers)
	if gm := runtime.GOMAXPROCS(0); width > gm {
		width = gm
	}
	if width > blocks {
		width = blocks
	}
	if width <= 1 {
		// Allocation-free serial fast path (hot loops pin warmed allocs):
		// same blocks, ascending, with the usual run-all-then-reraise
		// panic contract.
		var first any
		for b := 0; b < blocks; b++ {
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			func() {
				defer func() {
					if r := recover(); r != nil && first == nil {
						first = r
					}
				}()
				f(lo, hi)
			}()
		}
		if first != nil {
			panic(first)
		}
		return
	}
	forEach(width, blocks, func(b int) {
		lo := b * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}

func forEach(workers, n int, f func(int)) {
	workers = PoolSize(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Same panic contract as the parallel path: run every item, then
		// re-raise the first captured panic.
		var first any
		for i := 0; i < n; i++ {
			func() {
				defer func() {
					if r := recover(); r != nil && first == nil {
						first = r
					}
				}()
				f(i)
			}()
		}
		if first != nil {
			panic(first)
		}
		return
	}
	var next atomic.Int64
	panics := make(chan any, n)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics <- r
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}
