package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		var hits [97]atomic.Int32
		ParallelFor(workers, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestParallelForReraisesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not re-raised", workers)
				}
			}()
			ParallelFor(workers, 8, func(i int) {
				ran.Add(1)
				if i == 3 {
					panic("boom")
				}
			})
		}()
		// The contract is that remaining items still run before the
		// re-raise.
		if ran.Load() != 8 {
			t.Fatalf("workers=%d: only %d/8 items ran", workers, ran.Load())
		}
	}
}

func TestParallelForBlocksCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 7, 0} {
		for _, grain := range []int{1, 7, 64, 97, 1000, 0, -1} {
			var hits [97]atomic.Int32
			ParallelForBlocks(workers, len(hits), grain, func(lo, hi int) {
				if lo >= hi {
					t.Fatalf("workers=%d grain=%d: empty block [%d,%d)", workers, grain, lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d grain=%d: index %d ran %d times", workers, grain, i, hits[i].Load())
				}
			}
		}
	}
}

// TestParallelForBlocksBoundariesIgnoreWorkers pins the determinism
// contract: the set of (lo, hi) blocks depends only on n and grain, never
// on the worker count.
func TestParallelForBlocksBoundariesIgnoreWorkers(t *testing.T) {
	const n, grain = 101, 8
	collect := func(workers int) map[[2]int]bool {
		var mu sync.Mutex
		out := map[[2]int]bool{}
		ParallelForBlocks(workers, n, grain, func(lo, hi int) {
			mu.Lock()
			out[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return out
	}
	ref := collect(1)
	for _, workers := range []int{2, 3, 4, 7, 0} {
		got := collect(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d blocks, want %d", workers, len(got), len(ref))
		}
		for b := range ref {
			if !got[b] {
				t.Fatalf("workers=%d: missing block %v", workers, b)
			}
		}
	}
	// With grain 8 over 101 indices the boundaries are fully determined.
	if !ref[[2]int{96, 101}] || !ref[[2]int{0, 8}] || len(ref) != 13 {
		t.Fatalf("unexpected block set: %v", ref)
	}
}

func TestParallelForBlocksReraisesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not re-raised", workers)
				}
			}()
			ParallelForBlocks(workers, 64, 8, func(lo, hi int) {
				ran.Add(int32(hi - lo))
				if lo == 16 {
					panic("boom")
				}
			})
		}()
		if ran.Load() != 64 {
			t.Fatalf("workers=%d: only %d/64 indices ran", workers, ran.Load())
		}
	}
}

func TestParallelForBlocksEmptyRange(t *testing.T) {
	ParallelForBlocks(4, 0, 8, func(lo, hi int) { t.Fatal("block ran on empty range") })
	ParallelForBlocks(4, -3, 8, func(lo, hi int) { t.Fatal("block ran on negative range") })
}

func TestPoolSize(t *testing.T) {
	if PoolSize(5) != 5 {
		t.Fatal("explicit width not honored")
	}
	if PoolSize(0) < 1 || PoolSize(-3) < 1 {
		t.Fatal("defaulted width must be at least 1")
	}
}
