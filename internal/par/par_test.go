package par

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		var hits [97]atomic.Int32
		ParallelFor(workers, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestParallelForReraisesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not re-raised", workers)
				}
			}()
			ParallelFor(workers, 8, func(i int) {
				ran.Add(1)
				if i == 3 {
					panic("boom")
				}
			})
		}()
		// The contract is that remaining items still run before the
		// re-raise.
		if ran.Load() != 8 {
			t.Fatalf("workers=%d: only %d/8 items ran", workers, ran.Load())
		}
	}
}

func TestPoolSize(t *testing.T) {
	if PoolSize(5) != 5 {
		t.Fatal("explicit width not honored")
	}
	if PoolSize(0) < 1 || PoolSize(-3) < 1 {
		t.Fatal("defaulted width must be at least 1")
	}
}
