package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBruteForceTriangle(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
	})
	size, weight := BruteForce(g, graph.UniformBudgets(3, 1))
	if size != 1 {
		t.Fatalf("triangle b=1 max size = %d, want 1", size)
	}
	if weight != 3 {
		t.Fatalf("triangle b=1 max weight = %v, want 3", weight)
	}
	size2, weight2 := BruteForce(g, graph.UniformBudgets(3, 2))
	if size2 != 3 || weight2 != 6 {
		t.Fatalf("triangle b=2: size=%d weight=%v, want 3/6", size2, weight2)
	}
}

func TestBruteForceStarBudget(t *testing.T) {
	g := graph.Star(6)
	b := graph.UniformBudgets(6, 1)
	b[0] = 3
	size, _ := BruteForce(g, b)
	if size != 3 {
		t.Fatalf("star hub b=3: size=%d, want 3", size)
	}
}

func TestBruteForceZeroBudget(t *testing.T) {
	g := graph.Path(4)
	b := graph.Budgets{0, 0, 0, 0}
	size, weight := BruteForce(g, b)
	if size != 0 || weight != 0 {
		t.Fatal("zero budgets should give empty matching")
	}
}

func TestDinicMatchesBruteForceBipartite(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rng.New(seed)
		g := graph.Bipartite(4, 4, 8, r.Split())
		b := graph.RandomBudgets(8, 1, 3, r.Split())
		want, _ := BruteForce(g, b)
		got, err := MaxBipartite(g, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: Dinic=%d brute=%d", seed, got, want)
		}
	}
}

func TestMaxBipartiteRejectsOddCycle(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := MaxBipartite(g, graph.UniformBudgets(5, 1)); err == nil {
		t.Fatal("odd cycle accepted")
	}
	if _, err := MaxWeightBipartite(g, graph.UniformBudgets(5, 1)); err == nil {
		t.Fatal("odd cycle accepted (weighted)")
	}
}

func TestMCMFMatchesBruteForceWeighted(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rng.New(seed)
		g := graph.BipartiteWeighted(4, 4, 8, 0.5, 5, r.Split())
		b := graph.RandomBudgets(8, 1, 3, r.Split())
		_, want := BruteForce(g, b)
		got, err := MaxWeightBipartite(g, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("seed %d: MCMF=%v brute=%v", seed, got, want)
		}
	}
}

func TestMCMFDoesNotForceFullFlow(t *testing.T) {
	// Max-weight b-matching may use fewer edges than max-cardinality: here
	// the best single edge beats any two-edge matching... construct: path
	// u-v-w where {u,v} weight 10, {v,w} weight 1, b ≡ 1: optimum takes just
	// {u,v} (weight 10) since both can't coexist.
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 1}})
	got, err := MaxWeightBipartite(g, graph.UniformBudgets(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("got %v, want 10", got)
	}
}

func TestDinicLargeStarBudget(t *testing.T) {
	g := graph.Star(100)
	b := graph.UniformBudgets(100, 1)
	b[0] = 42
	got, err := MaxBipartite(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("star hub: %d, want 42", got)
	}
}

func TestTopWeights(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 5}, {U: 0, V: 2, W: 3},
	})
	if got := TopWeights(g, 2); got != 8 {
		t.Fatalf("TopWeights(2) = %v, want 8", got)
	}
}

// Property: brute-force size is monotone in budgets, and Dinic agrees on
// bipartite graphs of moderate size (where brute force is infeasible,
// monotonicity plus flow integrality give cross-checks).
func TestBruteForceMonotoneInBudgets(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		g := graph.Gnm(7, 10, r.Split())
		b1 := graph.RandomBudgets(7, 1, 2, r.Split())
		b2 := make(graph.Budgets, 7)
		for i := range b2 {
			b2[i] = b1[i] + 1
		}
		s1, w1 := BruteForce(g, b1)
		s2, w2 := BruteForce(g, b2)
		return s2 >= s1 && w2 >= w1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDinicVsGreedyTwiceBound(t *testing.T) {
	// Greedy maximal is a 2-approximation: OPT ≤ 2·|greedy|. Verify on
	// larger bipartite graphs where brute force can't run.
	r := rng.New(77)
	g := graph.Bipartite(40, 40, 400, r.Split())
	b := graph.RandomBudgets(80, 1, 4, r.Split())
	opt, err := MaxBipartite(g, b)
	if err != nil {
		t.Fatal(err)
	}
	// Inline greedy (avoid importing baseline to keep deps acyclic).
	deg := make([]int, g.N)
	greedy := 0
	for _, e := range g.Edges {
		if deg[e.U] < b[e.U] && deg[e.V] < b[e.V] {
			deg[e.U]++
			deg[e.V]++
			greedy++
		}
	}
	if opt > 2*greedy {
		t.Fatalf("2-approximation violated: opt=%d greedy=%d", opt, greedy)
	}
	if greedy > opt {
		t.Fatalf("greedy exceeded optimum: %d > %d", greedy, opt)
	}
}
