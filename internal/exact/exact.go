// Package exact provides ground-truth solvers the experiments compare the
// paper's algorithms against:
//
//   - BruteForce: branch-and-bound over edge subsets; exact maximum
//     (cardinality or weight) b-matching on any small graph.
//   - Dinic max-flow: exact maximum-cardinality b-matching on bipartite
//     graphs of any size used here.
//   - Min-cost-flow: exact maximum-weight b-matching on bipartite graphs.
//
// Exact general-graph weighted b-matching (Pulleyblank's algorithm) is out
// of scope; see DESIGN.md ("Substitutions").
package exact

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// BruteForce returns the maximum b-matching size and weight achievable on g
// (two separate optima: the maximum cardinality and the maximum total
// weight). It is exponential in m; callers should keep m ≲ 30.
func BruteForce(g *graph.Graph, b graph.Budgets) (maxSize int, maxWeight float64) {
	m := g.M()
	if m > 34 {
		panic(fmt.Sprintf("exact: BruteForce on m=%d edges would not terminate", m))
	}
	deg := make([]int, g.N)

	// Order edges by descending weight so weight-based pruning is effective.
	order := graph.SortEdgesByWeightDesc(g)
	// Suffix sums for pruning.
	sufW := make([]float64, m+1)
	for i := m - 1; i >= 0; i-- {
		sufW[i] = sufW[i+1] + g.Edges[order[i]].W
	}

	var bestSize int
	var bestWeight float64
	var rec func(i, size int, weight float64)
	rec = func(i, size int, weight float64) {
		if size > bestSize {
			bestSize = size
		}
		if weight > bestWeight {
			bestWeight = weight
		}
		if i == m {
			return
		}
		// Prune only when neither objective can improve.
		if size+(m-i) <= bestSize && weight+sufW[i] <= bestWeight {
			return
		}
		e := order[i]
		ed := g.Edges[e]
		if deg[ed.U] < b[ed.U] && deg[ed.V] < b[ed.V] {
			deg[ed.U]++
			deg[ed.V]++
			rec(i+1, size+1, weight+ed.W)
			deg[ed.U]--
			deg[ed.V]--
		}
		rec(i+1, size, weight)
	}
	rec(0, 0, 0)
	return bestSize, bestWeight
}

// MaxBipartite returns the exact maximum-cardinality b-matching size on a
// bipartite graph, computed by Dinic max-flow on the standard reduction
// (source→left with capacity b, unit edge capacities, right→sink with
// capacity b). It returns an error if g is not bipartite.
func MaxBipartite(g *graph.Graph, b graph.Budgets) (int, error) {
	side, ok := g.IsBipartite()
	if !ok {
		return 0, fmt.Errorf("exact: graph is not bipartite")
	}
	// Nodes: 0 = source, 1..n = vertices, n+1 = sink.
	d := newDinic(g.N + 2)
	src, snk := 0, g.N+1
	for v := 0; v < g.N; v++ {
		if b[v] == 0 {
			continue
		}
		if side[v] == 0 {
			d.addEdge(src, v+1, int64(b[v]))
		} else {
			d.addEdge(v+1, snk, int64(b[v]))
		}
	}
	for _, e := range g.Edges {
		u, v := int(e.U), int(e.V)
		if side[u] == 1 {
			u, v = v, u
		}
		d.addEdge(u+1, v+1, 1)
	}
	return int(d.maxflow(src, snk)), nil
}

// MaxWeightBipartite returns the exact maximum-weight b-matching weight on a
// bipartite graph via successive shortest augmenting paths on the min-cost
// flow network (augmenting while the best path still has positive profit).
func MaxWeightBipartite(g *graph.Graph, b graph.Budgets) (float64, error) {
	side, ok := g.IsBipartite()
	if !ok {
		return 0, fmt.Errorf("exact: graph is not bipartite")
	}
	mc := newMCMF(g.N + 2)
	src, snk := 0, g.N+1
	for v := 0; v < g.N; v++ {
		if b[v] == 0 {
			continue
		}
		if side[v] == 0 {
			mc.addEdge(src, v+1, int64(b[v]), 0)
		} else {
			mc.addEdge(v+1, snk, int64(b[v]), 0)
		}
	}
	for _, e := range g.Edges {
		u, v := int(e.U), int(e.V)
		if side[u] == 1 {
			u, v = v, u
		}
		mc.addEdge(u+1, v+1, 1, -e.W)
	}
	return -mc.maxProfitFlow(src, snk), nil
}

// ---------------------------------------------------------------- Dinic --

type dinicEdge struct {
	to, rev int
	cap     int64
}

type dinic struct {
	adj   [][]dinicEdge
	level []int
	iter  []int
}

func newDinic(n int) *dinic {
	return &dinic{adj: make([][]dinicEdge, n), level: make([]int, n), iter: make([]int, n)}
}

func (d *dinic) addEdge(from, to int, cap int64) {
	d.adj[from] = append(d.adj[from], dinicEdge{to: to, rev: len(d.adj[to]), cap: cap})
	d.adj[to] = append(d.adj[to], dinicEdge{to: from, rev: len(d.adj[from]) - 1, cap: 0})
}

func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := []int{s}
	d.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range d.adj[v] {
			if e.cap > 0 && d.level[e.to] < 0 {
				d.level[e.to] = d.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; d.iter[v] < len(d.adj[v]); d.iter[v]++ {
		e := &d.adj[v][d.iter[v]]
		if e.cap > 0 && d.level[v] < d.level[e.to] {
			got := d.dfs(e.to, t, min64(f, e.cap))
			if got > 0 {
				e.cap -= got
				d.adj[e.to][e.rev].cap += got
				return got
			}
		}
	}
	return 0
}

func (d *dinic) maxflow(s, t int) int64 {
	var flow int64
	for d.bfs(s, t) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(s, t, 1<<62)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// ----------------------------------------------------------------- MCMF --

type mcmfEdge struct {
	to, rev int
	cap     int64
	cost    float64
}

type mcmf struct {
	adj [][]mcmfEdge
}

func newMCMF(n int) *mcmf { return &mcmf{adj: make([][]mcmfEdge, n)} }

func (m *mcmf) addEdge(from, to int, cap int64, cost float64) {
	m.adj[from] = append(m.adj[from], mcmfEdge{to: to, rev: len(m.adj[to]), cap: cap, cost: cost})
	m.adj[to] = append(m.adj[to], mcmfEdge{to: from, rev: len(m.adj[from]) - 1, cap: 0, cost: -cost})
}

// maxProfitFlow augments unit flow along the cheapest (most profitable)
// residual path while that path has negative cost, using SPFA to tolerate
// the negative arc costs. It returns the total cost (negative of total
// profit).
func (m *mcmf) maxProfitFlow(s, t int) float64 {
	n := len(m.adj)
	var total float64
	for {
		dist := make([]float64, n)
		inq := make([]bool, n)
		prevV := make([]int, n)
		prevE := make([]int, n)
		const inf = 1e18
		for i := range dist {
			dist[i] = inf
			prevV[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		inq[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			inq[v] = false
			for ei := range m.adj[v] {
				e := m.adj[v][ei]
				if e.cap > 0 && dist[v]+e.cost < dist[e.to]-1e-12 {
					dist[e.to] = dist[v] + e.cost
					prevV[e.to] = v
					prevE[e.to] = ei
					if !inq[e.to] {
						inq[e.to] = true
						queue = append(queue, e.to)
					}
				}
			}
		}
		if prevV[t] == -1 || dist[t] >= -1e-12 {
			break // no profitable augmentation remains
		}
		// Augment one unit (all relevant capacities are integral).
		for v := t; v != s; v = prevV[v] {
			e := &m.adj[prevV[v]][prevE[v]]
			e.cap--
			m.adj[v][e.rev].cap++
		}
		total += dist[t]
	}
	return total
}

// TopWeights returns the sum of the k largest edge weights; a cheap upper
// bound used in sanity tests.
func TopWeights(g *graph.Graph, k int) float64 {
	ws := make([]float64, g.M())
	for i, e := range g.Edges {
		ws[i] = e.W
	}
	sort.Float64s(ws)
	var s float64
	for i := len(ws) - 1; i >= 0 && k > 0; i, k = i-1, k-1 {
		s += ws[i]
	}
	return s
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
