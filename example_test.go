package bmatch_test

import (
	"context"
	"fmt"

	bmatch "repro"
)

// The unified API: one Request, one call, every algorithm. The weighted
// greedy trap (3-4-3) solved to optimality with the (1+ε) algorithm, and
// its certificate-carrying Θ(1) counterpart — both through Solve.
func ExampleSolve() {
	g, err := bmatch.NewGraph(4, []bmatch.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 3},
	})
	if err != nil {
		panic(err)
	}
	b := bmatch.UniformBudgets(4, 1)
	rep, err := bmatch.Solve(context.Background(), g, b,
		bmatch.Request{Algo: bmatch.AlgoMaxWeight, Seed: 1, Eps: 0.2})
	if err != nil {
		panic(err)
	}
	fmt.Println("weight:", rep.Weight)

	// The greedy baseline through the same contract.
	grep, err := bmatch.Solve(context.Background(), g, b,
		bmatch.Request{Algo: bmatch.AlgoGreedy})
	if err != nil {
		panic(err)
	}
	fmt.Println("greedy weight:", grep.Weight)
	// Output:
	// weight: 6
	// greedy weight: 4
}

// A path of three edges with unit budgets: the maximum matching takes the
// two outer edges.
func ExampleMax() {
	g, err := bmatch.NewGraph(4, []bmatch.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	if err != nil {
		panic(err)
	}
	m, err := bmatch.Max(g, bmatch.UniformBudgets(4, 1), bmatch.Options{Seed: 1, Eps: 0.25})
	if err != nil {
		panic(err)
	}
	fmt.Println("size:", m.Size())
	// Output:
	// size: 2
}

// The classic weighted greedy trap (3-4-3): the optimum takes the outer
// edges for weight 6.
func ExampleMaxWeight() {
	g, err := bmatch.NewGraph(4, []bmatch.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 3},
	})
	if err != nil {
		panic(err)
	}
	m, err := bmatch.MaxWeight(g, bmatch.UniformBudgets(4, 1), bmatch.Options{Seed: 1, Eps: 0.2})
	if err != nil {
		panic(err)
	}
	fmt.Println("weight:", m.Weight())
	// Output:
	// weight: 6
}

// A triangle with budget 2 everywhere admits all three edges.
func ExampleApprox() {
	g, err := bmatch.NewGraph(3, []bmatch.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
	})
	if err != nil {
		panic(err)
	}
	m, stats, err := bmatch.Approx(g, bmatch.UniformBudgets(3, 2), bmatch.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("size:", m.Size(), "upper bound holds:", float64(m.Size()) <= stats.DualBound)
	// Output:
	// size: 3 upper bound holds: true
}

// Budgets bound matched degrees per vertex: a star's hub with budget 2
// admits exactly two of its edges.
func ExampleUniformBudgets() {
	g, err := bmatch.NewGraph(4, []bmatch.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1},
	})
	if err != nil {
		panic(err)
	}
	b := bmatch.UniformBudgets(4, 1)
	b[0] = 2
	m, err := bmatch.Max(g, b, bmatch.Options{Seed: 1, Eps: 0.5})
	if err != nil {
		panic(err)
	}
	fmt.Println("hub degree:", m.MatchedDeg(0))
	// Output:
	// hub degree: 2
}
