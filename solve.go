package bmatch

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Algo selects a solver. The facade, engine, and HTTP surface share these
// names: the string is exactly what the daemon's algo= parameter accepts.
type Algo = engine.Algo

const (
	// AlgoApprox is the Θ(1)-approximate MPC algorithm (Theorem 3.1); its
	// Report carries Stats with the dual certificate.
	AlgoApprox = engine.AlgoApprox
	// AlgoMax is the (1+ε)-approximate unweighted algorithm (Theorem 4.1).
	AlgoMax = engine.AlgoMax
	// AlgoMaxWeight is the (1+ε)-approximate weighted algorithm
	// (Theorem 5.1).
	AlgoMaxWeight = engine.AlgoMaxWeight
	// AlgoGreedy is the weight-sorted greedy baseline (2-approximate) the
	// engine has always served over HTTP; the unified API makes it
	// reachable for library callers too.
	AlgoGreedy = engine.AlgoGreedy
	// AlgoFrac solves the fractional b-matching LP (Algorithms 1–3) and
	// fills Report.Frac with the solution and its dual certificates.
	AlgoFrac = engine.AlgoFrac
)

// Progress is a point-in-time sample of a running solve; see
// Request.Progress.
type Progress = engine.Progress

// Request is the one solve contract of the unified API: a single struct
// that selects the algorithm and carries every knob the internals support,
// mapping 1:1 onto the engine's Spec so the facade, engine sessions, the
// job registry, and the HTTP API all speak the same type. The zero value
// is usable: maximum-weight solve, seed 0, ε = 0.25, practical constants,
// serial drivers.
type Request struct {
	// Algo selects the solver; empty selects AlgoMaxWeight (the same
	// default as the daemon's /v1/solve).
	Algo Algo
	// Eps is the approximation slack for the (1+ε) algorithms; 0 keeps
	// the default of 0.25.
	Eps float64
	// Seed makes every run reproducible; results are bit-identical per
	// seed across every entry point and transport.
	Seed int64
	// Workers bounds the drivers' internal parallelism (simulator
	// delivery, rounding repeats, augmentation waves, candidate
	// generation). 0 means serial; results are bit-identical across
	// worker counts.
	Workers int
	// PaperConstants selects the paper's exact scalar constants instead
	// of the practical defaults. See DESIGN.md.
	PaperConstants bool
	// NoCache makes session solves bypass the result cache entirely
	// (neither served from it nor stored into it). One-shot Solve calls
	// never touch a cache, so it is a no-op there.
	NoCache bool
	// ValueMode selects the fractional solver's value precision: "" or
	// "f64" (the default) runs the float64 kernels, "f32" opts AlgoFrac
	// into the float32 value-mode kernels (halved hot-vector memory
	// traffic; relative objective error bounded per README "Value modes").
	// f32 results are deterministic across worker counts and MPC
	// transports but are cached separately from f64 results. Rejected for
	// every algorithm other than AlgoFrac.
	ValueMode string
	// MPCTransport selects the MPC simulator's delivery backend for the
	// fractional compression supersteps (the simulator core of AlgoApprox
	// and AlgoFrac). Nil is the in-process pipeline; a non-nil factory
	// (e.g. mpctransport.NewDialer over `bmatchd -mpc-worker` processes)
	// ships those supersteps' messages to external worker processes. The
	// auxiliary MPC-modeled phases of AlgoMax/AlgoMaxWeight (slot
	// assignment, conflict resolution) always run in-process — their
	// payloads are outside the wire codec's closed type set. Backends are
	// bit-identical by contract — like Workers, this changes where the
	// solve runs, never its result. Implementations must be comparable
	// (use a pointer type).
	MPCTransport mpc.TransportFactory
	// Progress, when non-nil, is invoked with a sample at solver
	// checkpoints (round, superstep, sweep, and stream-pass boundaries).
	// It runs synchronously on solver goroutines, so it must be fast;
	// concurrent checkpoints may be coalesced. Progress is not part of
	// the request's identity: two Requests differing only here are the
	// same solve.
	Progress func(Progress)
}

// Validate checks the request without running it.
func (r Request) Validate() error {
	_, err := r.spec()
	return err
}

// spec resolves the request to the engine's comparable Spec (the Progress
// callback travels separately, via the context).
func (r Request) spec() (engine.Spec, error) {
	algo := r.Algo
	if algo == "" {
		algo = AlgoMaxWeight
	}
	spec := engine.Spec{
		Algo:           algo,
		Eps:            r.Eps,
		Seed:           r.Seed,
		Workers:        r.Workers,
		PaperConstants: r.PaperConstants,
		NoCache:        r.NoCache,
		ValueMode:      r.ValueMode,
		MPCTransport:   r.MPCTransport,
	}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("bmatch: %w", err)
	}
	return spec, nil
}

// withProgress installs the request's Progress callback as the innermost
// context layer, after any caller deadline, so every checkpoint is
// observed.
func (r Request) withProgress(ctx context.Context) context.Context {
	if r.Progress == nil {
		return ctx
	}
	return engine.WithProgress(ctx, r.Progress)
}

// Report is the unified solve outcome. Which fields are set depends on the
// algorithm: integral solves fill M/Size/Weight, AlgoApprox adds Stats,
// AlgoFrac fills Frac instead of M, and stream solves fill Stream
// alongside Size/Weight. FromCache and Elapsed describe how the result was
// produced (FromCache only ever set on Session/daemon paths).
type Report struct {
	// Algo echoes the resolved algorithm (after the empty-means-maxw
	// default).
	Algo Algo
	// M is the integral b-matching (nil for AlgoFrac and stream solves).
	M *BMatching
	// Size and Weight summarize the solution.
	Size   int
	Weight float64
	// Stats carries the MPC measurements and dual certificate
	// (AlgoApprox only).
	Stats *ApproxStats
	// Frac is the fractional LP solution with its certificates (AlgoFrac
	// only).
	Frac *FractionalResult
	// Stream carries the streaming run's passes and peak memory
	// (SolveStream only).
	Stream *StreamResult
	// FromCache reports a session result-cache hit.
	FromCache bool
	// Elapsed is this call's latency (for cache hits: the hit's, not the
	// original solve's).
	Elapsed time.Duration
}

// Solve is the unified one-shot entry point: every algorithm, every knob,
// one call. It dispatches through the same engine path the daemon serves,
// so a Solve here, a Session.Solve, and an HTTP request with the same
// (graph, Request) return bit-identical results. ctx cancellation and
// deadlines are honored at every solver checkpoint; a cancelled solve
// returns ctx's error and nothing partial. The legacy entry-point matrix
// (Approx, Max, MaxWeight, ApproxFractional and their Ctx/Session
// variants) delegates here.
func Solve(ctx context.Context, g *Graph, b Budgets, req Request) (*Report, error) {
	spec, err := req.spec()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sol, err := engine.Solve(req.withProgress(ctx), g, b, spec)
	if err != nil {
		return nil, err
	}
	rep := &Report{Algo: spec.Algo, Elapsed: time.Since(start)}
	if sol.M != nil {
		rep.M = sol.M
		rep.Size = sol.M.Size()
		rep.Weight = sol.M.Weight()
	}
	if sol.Frac != nil {
		rep.Frac = sol.Frac
	}
	if spec.Algo == AlgoApprox {
		rep.Stats = &ApproxStats{
			CompressionSteps: sol.CompressionSteps,
			MPCRounds:        sol.MPCRounds,
			MaxMachineEdges:  sol.MaxMachineEdges,
			FracValue:        sol.FracValue,
			DualBound:        sol.DualBound,
		}
	}
	return rep, nil
}

// Solve is the session-aware unified entry point: identical output to the
// package-level Solve, but instances and results are cached, so repeat
// solves of the same graph skip adjacency building and repeat identical
// Requests skip the solve itself (Report.FromCache reports the hit).
func (s *Session) Solve(ctx context.Context, g *Graph, b Budgets, req Request) (*Report, error) {
	spec, err := req.spec()
	if err != nil {
		return nil, err
	}
	inst, err := s.s.InstanceFromGraph(g, b)
	if err != nil {
		return nil, err
	}
	res, err := s.s.Solve(req.withProgress(ctx), inst, spec)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Algo:      spec.Algo,
		Size:      res.Size,
		Weight:    res.Weight,
		FromCache: res.FromCache,
		Elapsed:   res.Elapsed,
	}
	if spec.Algo == AlgoFrac {
		rep.Frac = &FractionalResult{
			X:                res.X,
			Value:            res.FracValue,
			DualBound:        res.DualBound,
			CoverVertices:    res.CoverVertices,
			CoverSlackEdges:  res.CoverSlackEdges,
			CompressionSteps: res.CompressionSteps,
			MPCRounds:        res.MPCRounds,
		}
		return rep, nil
	}
	// Rebuild the matching from the cached edge ids; M.Weight() may
	// differ from Report.Weight (the solver's accumulation order) in the
	// last ULP.
	m, err := rebuildMatching(g, b, res.Edges)
	if err != nil {
		return nil, err
	}
	rep.M = m
	if spec.Algo == AlgoApprox {
		rep.Stats = &ApproxStats{
			CompressionSteps: res.CompressionSteps,
			MPCRounds:        res.MPCRounds,
			MaxMachineEdges:  res.MaxMachineEdges,
			FracValue:        res.FracValue,
			DualBound:        res.DualBound,
		}
	}
	return rep, nil
}

// SolveStream is the unified semi-streaming entry point: AlgoMax or
// AlgoMaxWeight (empty selects AlgoMaxWeight) over an edge stream with
// Õ(Σb_v) retained memory. ctx is checked at every stream-pass boundary.
// Request.Workers and NoCache are ignored: the streaming drivers are
// single-pass machines by construction and nothing is cached.
func SolveStream(ctx context.Context, s EdgeStream, n int, b Budgets, req Request) (*Report, error) {
	spec, err := req.spec()
	if err != nil {
		return nil, err
	}
	if len(b) != n {
		return nil, fmt.Errorf("bmatch: budget vector has %d entries for %d vertices", len(b), n)
	}
	params := stream.Params{Eps: engine.EpsOrDefault(spec.Eps)}
	ctx = req.withProgress(ctx)
	start := time.Now()
	var res *StreamResult
	switch spec.Algo {
	case AlgoMax:
		res, err = stream.OnePlusEpsCtx(ctx, s, n, b, params, rng.New(spec.Seed))
	case AlgoMaxWeight:
		res, err = stream.OnePlusEpsWeightedCtx(ctx, s, n, b, params, rng.New(spec.Seed))
	default:
		return nil, fmt.Errorf("bmatch: stream solve supports algo max or maxw, not %q", spec.Algo)
	}
	if err != nil {
		return nil, err
	}
	return &Report{
		Algo:    spec.Algo,
		Size:    res.Size,
		Weight:  res.Weight,
		Stream:  res,
		Elapsed: time.Since(start),
	}, nil
}
