// Benchmarks: one testing.B target per experiment in DESIGN.md (E1–E12).
// The benchmarks measure the wall-clock cost of each pipeline; the
// corresponding correctness/shape tables are produced by cmd/experiments
// and recorded in EXPERIMENTS.md.
package bmatch

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/augment"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/exact"
	"repro/internal/frac"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/weighted"
)

// BenchmarkSequential (E1): the idealized doubling process at tightness-
// guaranteeing round counts. The workers dimension sweeps the blocked
// round kernels; the solution is bit-identical across the sweep.
func BenchmarkSequential(b *testing.B) {
	for _, d := range []int{16, 64} {
		n := 2000
		r := rng.New(1)
		g := graph.Gnm(n, n*d/2, r.Split())
		p := frac.BMatchingProblem(g, graph.UniformBudgets(n, 2))
		T := frac.TightRounds(g.M())
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("d=%d/T=%d/workers=%d", d, T, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.SequentialWorkers(T, nil, rng.New(int64(i)), workers)
				}
			})
		}
	}
}

// hugeKernelM is the 10^8-edge scaling point. It only joins the sweep when
// BMATCH_BENCH_HUGE is set (and never under -short): building it takes tens
// of seconds and several GB, which is trajectory-recording territory, not
// CI smoke territory.
const hugeKernelM = 100_000_000

// kernelScalingGraph builds the m-edge scaling instance. Sizes through 10^7
// use the in-memory generator; the 10^8 point would pay dearly for its
// dedup set, so it exercises the big-instance pipeline end to end instead —
// streaming generation into a BMG1 file, then the two-pass streaming
// ingest that never materializes more than the final CSR.
func kernelScalingGraph(b *testing.B, m int) *graph.Graph {
	n := m / 10
	r := rng.New(15)
	if m < hugeKernelM {
		return graph.Gnm(n, m, r.Split())
	}
	path := filepath.Join(b.TempDir(), "huge.bmg")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	w, err := graphio.NewBinaryWriter(f, n, m, nil, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.GnmStream(n, m, 0, 0, r.Split(), w.Edge); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	g, _, err := graphio.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkKernelScaling is the committed ns/op scaling curve for the
// fused CSR round kernels, swept over kernel, value mode (f64 and the
// half-footprint f32 slab), edge count, and worker-pool width. kernel=round
// is the fused vertex-sum + looseness gather followed by the blocked
// loose-edge filter — dominated by the CSR gather, whose cache-miss cost is
// mode-independent. kernel=init is the blocked initialization — value and
// capacity streams only, which is where halving the value bytes pays and
// where BENCH_BUDGETS.json pins the f32/f64 ns ratio at the large sizes.
// -short (the CI smoke configuration) keeps only the smallest size; the
// full sweep — plus the 10^8-edge point behind BMATCH_BENCH_HUGE — is what
// BENCH_PR<n>.json trajectory points record.
func BenchmarkKernelScaling(b *testing.B) {
	sizes := []int{100_000, 1_000_000, 10_000_000}
	if os.Getenv("BMATCH_BENCH_HUGE") != "" {
		sizes = append(sizes, hugeKernelM)
	}
	for _, m := range sizes {
		if testing.Short() && m > 100_000 {
			continue
		}
		g := kernelScalingGraph(b, m)
		n := g.N
		p := frac.BMatchingProblem(g, graph.UniformBudgets(n, 2))
		w64 := frac.NewView[float64](p)
		x := p.InitialValues(g.AvgDeg())
		y := make([]float64, n)
		q := make([]float64, n)
		vl := make([]bool, n)
		w32 := frac.NewView[float32](p)
		x32 := make([]float32, len(x))
		for i, v := range x {
			x32[i] = float32(v)
		}
		y32 := make([]float32, n)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("kernel=round/mode=f64/m=%d/workers=%d", m, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.VLooseIntoWorkers(vl, y, x, 0.2, workers)
					p.ELooseWorkers(x, 0.2, workers)
				}
			})
			b.Run(fmt.Sprintf("kernel=round/mode=f32/m=%d/workers=%d", m, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w32.VLooseIntoWorkers(vl, y32, x32, 0.2, workers)
					w32.ELooseWorkers(x32, 0.2, workers)
				}
			})
			b.Run(fmt.Sprintf("kernel=init/mode=f64/m=%d/workers=%d", m, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w64.InitialValuesIntoWorkers(x, q, g.AvgDeg(), workers)
				}
			})
			b.Run(fmt.Sprintf("kernel=init/mode=f32/m=%d/workers=%d", m, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w32.InitialValuesIntoWorkers(x32, q, g.AvgDeg(), workers)
				}
			})
		}
	}
}

// BenchmarkFullMPC (E2): the complete O(log log d̄) driver on the
// core+fringe workload where compression has real work to do.
func BenchmarkFullMPC(b *testing.B) {
	for _, coreDeg := range []int{64, 256} {
		nc, nf := 800, 2400
		r := rng.New(2)
		g := graph.CoreFringe(nc, nc*coreDeg/2, nf, nf/2, r.Split())
		p := frac.BMatchingProblem(g, graph.RandomBudgets(g.N, 1, 4, r.Split()))
		for _, workers := range []int{1, 4} {
			params := frac.PracticalParams()
			params.Workers = workers
			b.Run(fmt.Sprintf("coreDeg=%d/m=%d/workers=%d", coreDeg, g.M(), workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.FullMPC(params, rng.New(int64(i)))
				}
			})
		}
	}
}

// BenchmarkConstApprox (E3): the full Theorem 3.1 pipeline
// (FullMPC + rounding + fill).
func BenchmarkConstApprox(b *testing.B) {
	for _, scale := range []struct{ n, m int }{{1000, 8000}, {2000, 32000}} {
		r := rng.New(3)
		g := graph.Gnm(scale.n, scale.m, r.Split())
		bud := graph.RandomBudgets(scale.n, 1, 4, r.Split())
		b.Run(fmt.Sprintf("n=%d/m=%d", scale.n, scale.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ConstApprox(g, bud, frac.PracticalParams(), rng.New(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnePlusEpsUnweighted (E4): layered-graph augmentation to
// (1+ε)-optimality.
func BenchmarkOnePlusEpsUnweighted(b *testing.B) {
	for _, eps := range []float64{0.5, 0.25} {
		r := rng.New(4)
		g := graph.Bipartite(100, 100, 1500, r.Split())
		bud := graph.RandomBudgets(200, 1, 3, r.Split())
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := augment.OnePlusEps(g, bud, nil, augment.DefaultParams(eps), rng.New(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnePlusEpsWeighted (E5): the weighted pipeline with conflict
// resolution.
func BenchmarkOnePlusEpsWeighted(b *testing.B) {
	for _, eps := range []float64{0.5, 0.25} {
		r := rng.New(5)
		g := graph.BipartiteWeighted(60, 60, 900, 1, 10, r.Split())
		bud := graph.RandomBudgets(120, 1, 3, r.Split())
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := weighted.OnePlusEpsWeighted(g, bud, nil, weighted.DefaultParams(eps), rng.New(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDegreeDrop (E6): a single compression step (OneRoundMPC), the
// unit whose repetition gives the log log d̄ round count.
func BenchmarkDegreeDrop(b *testing.B) {
	r := rng.New(6)
	g := graph.CoreFringe(800, 800*200, 2400, 1200, r.Split())
	p := frac.BMatchingProblem(g, graph.RandomBudgets(g.N, 1, 3, r.Split()))
	b.Run(fmt.Sprintf("m=%d", g.M()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.OneRoundMPC(frac.PracticalParams(), nil, rng.New(int64(i)))
		}
	})
}

// BenchmarkMachineLoad (E7): OneRoundMPC across densities — per-op time and
// the reported per-machine load. The workers dimension exercises the
// parallel delivery pipeline: results are identical for every worker
// count, only wall-clock changes.
func BenchmarkMachineLoad(b *testing.B) {
	for _, m := range []int{16000, 64000} {
		n := 1000
		r := rng.New(7)
		g := graph.Gnm(n, m, r.Split())
		p := frac.BMatchingProblem(g, graph.UniformBudgets(n, 2))
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			params := frac.PracticalParams()
			params.Workers = workers
			b.Run(fmt.Sprintf("m=%d/workers=%d", m, workers), func(b *testing.B) {
				maxLoad := 0
				for i := 0; i < b.N; i++ {
					res := p.OneRoundMPC(params, nil, rng.New(int64(i)))
					if res.MaxMachineEdges > maxLoad {
						maxLoad = res.MaxMachineEdges
					}
				}
				b.ReportMetric(float64(maxLoad)/float64(n), "load/n")
			})
		}
	}
}

// BenchmarkStreaming (E8): one-pass greedy vs multi-pass (1+ε) streaming.
func BenchmarkStreaming(b *testing.B) {
	r := rng.New(8)
	g := graph.Gnm(1000, 30000, r.Split())
	bud := graph.RandomBudgets(1000, 1, 3, r.Split())
	b.Run("greedy-1pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stream.GreedyOnePass(stream.NewSliceStream(g), g.N, bud)
		}
	})
	b.Run("multipass-eps0.5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := stream.OnePlusEps(stream.NewSliceStream(g), g.N, bud,
				stream.Params{Eps: 0.5, MaxSweeps: 4, RetriesPerK: 2, MaxRetries: 4}, rng.New(int64(i)))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	gw := graph.GnmWeighted(1000, 30000, 1, 10, r.Split())
	b.Run("multipass-weighted-eps0.5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := stream.OnePlusEpsWeighted(stream.NewSliceStream(gw), gw.N, bud,
				stream.Params{Eps: 0.5, MaxSweeps: 4, RetriesPerK: 2, MaxRetries: 4}, rng.New(int64(i)))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConflictResolution (E9): the paper's distributed scheme vs the
// gather-everything baseline on a Σb ≫ n workload.
func BenchmarkConflictResolution(b *testing.B) {
	const leaves = 3000
	g := graph.Star(leaves + 1)
	bud := make(graph.Budgets, leaves+1)
	bud[0] = leaves
	for i := 1; i <= leaves; i++ {
		bud[i] = 1
	}
	m := matching.MustNew(g, bud)
	var cands []weighted.Candidate
	var walks []matching.Walk
	for e := 0; e < g.M(); e++ {
		w := matching.Walk{EdgeIDs: []int32{int32(e)}, Start: int32(e + 1)}
		walks = append(walks, w)
		cands = append(cands, weighted.Candidate{Walk: w, Gain: 1})
	}
	b.Run("mpc-distributed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			weighted.ResolveWithinMPC(cands, m, 16)
		}
	})
	b.Run("gather-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.GatherConflictResolution(walks, m)
		}
	})
}

// BenchmarkInitAblation (E10): paper initialization vs the unclamped rule.
func BenchmarkInitAblation(b *testing.B) {
	r := rng.New(10)
	g := graph.ChungLu(1500, 15000, 2.2, r.Split())
	p := frac.BMatchingProblem(g, graph.UniformBudgets(g.N, 2))
	for _, noClamp := range []bool{false, true} {
		name := "paper-clamp"
		if noClamp {
			name = "ablated-dv"
		}
		b.Run(name, func(b *testing.B) {
			params := frac.PracticalParams()
			params.InitNoClamp = noClamp
			for i := 0; i < b.N; i++ {
				p.OneRoundMPC(params, nil, rng.New(int64(i)))
			}
		})
	}
}

// BenchmarkThresholdAblation (E11): random vs fixed activity thresholds.
func BenchmarkThresholdAblation(b *testing.B) {
	r := rng.New(11)
	g := graph.Gnm(1500, 36000, r.Split())
	p := frac.BMatchingProblem(g, graph.UniformBudgets(g.N, 2))
	b.Run("random-thresholds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.OneRoundMPC(frac.PracticalParams(), nil, rng.New(int64(i)))
		}
	})
	b.Run("fixed-thresholds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.OneRoundMPC(frac.PracticalParams(), frac.FixedThresholds(p, 0.5), rng.New(int64(i)))
		}
	})
}

// BenchmarkCoupling (E12): lockstep coupled execution of the idealized and
// approximate processes with full divergence instrumentation.
func BenchmarkCoupling(b *testing.B) {
	r := rng.New(14)
	g := graph.CoreFringe(500, 500*60, 1000, 500, r.Split())
	p := frac.BMatchingProblem(g, graph.RandomBudgets(g.N, 1, 3, r.Split()))
	b.Run(fmt.Sprintf("m=%d/T=6", g.M()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coupling.Run(p, 8, 6, nil, rng.New(int64(i)))
		}
	})
}

// BenchmarkExactComparators: cost of the ground-truth solvers used by the
// quality experiments.
func BenchmarkExactComparators(b *testing.B) {
	r := rng.New(12)
	gb := graph.Bipartite(200, 200, 4000, r.Split())
	budB := graph.RandomBudgets(400, 1, 4, r.Split())
	b.Run("dinic-bipartite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.MaxBipartite(gb, budB); err != nil {
				b.Fatal(err)
			}
		}
	})
	gw := graph.BipartiteWeighted(60, 60, 1200, 1, 10, r.Split())
	budW := graph.RandomBudgets(120, 1, 3, r.Split())
	b.Run("mcmf-bipartite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.MaxWeightBipartite(gw, budW); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGreedyBaselines: the 2-approximation baselines.
func BenchmarkGreedyBaselines(b *testing.B) {
	r := rng.New(13)
	g := graph.GnmWeighted(5000, 100000, 1, 10, r.Split())
	bud := graph.RandomBudgets(5000, 1, 4, r.Split())
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.Greedy(g, bud)
		}
	})
	b.Run("greedy-weighted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.GreedyWeighted(g, bud)
		}
	})
}
