package bmatch

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/rng"
)

func testGraph(tb testing.TB) (*Graph, Budgets) {
	tb.Helper()
	r := rng.New(31)
	g := graph.GnmWeighted(90, 700, 1, 9, r.Split())
	return g, graph.RandomBudgets(90, 1, 3, r.Split())
}

func sameEdges(tb testing.TB, label string, want, got []int32) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: %d edges vs %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			tb.Fatalf("%s: edge %d differs (%d vs %d)", label, i, got[i], want[i])
		}
	}
}

// TestSolveMatchesLegacyMatrix is the acceptance criterion for the unified
// API: every legacy facade entry point and the unified Solve path return
// bit-identical results per seed — which must hold by construction, since
// the legacy matrix now delegates to Solve.
func TestSolveMatchesLegacyMatrix(t *testing.T) {
	g, b := testGraph(t)

	for _, seed := range []int64{1, 7} {
		opts := Options{Seed: seed, Eps: 0.25}

		t.Run("approx", func(t *testing.T) {
			m, stats, err := Approx(g, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Solve(context.Background(), g, b, Request{Algo: AlgoApprox, Eps: 0.25, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sameEdges(t, "approx", m.Edges(), rep.M.Edges())
			if *stats != *rep.Stats {
				t.Fatalf("stats diverged: %+v vs %+v", rep.Stats, stats)
			}
		})

		t.Run("max", func(t *testing.T) {
			m, err := Max(g, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Solve(context.Background(), g, b, Request{Algo: AlgoMax, Eps: 0.25, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sameEdges(t, "max", m.Edges(), rep.M.Edges())
		})

		t.Run("maxw", func(t *testing.T) {
			m, err := MaxWeight(g, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Algo left empty: maxw is the unified default.
			rep, err := Solve(context.Background(), g, b, Request{Eps: 0.25, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Algo != AlgoMaxWeight {
				t.Fatalf("empty Algo resolved to %q", rep.Algo)
			}
			sameEdges(t, "maxw", m.Edges(), rep.M.Edges())
		})

		t.Run("frac", func(t *testing.T) {
			fr, err := ApproxFractional(g, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Solve(context.Background(), g, b, Request{Algo: AlgoFrac, Eps: 0.25, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Frac == nil || rep.M != nil {
				t.Fatalf("frac report shape wrong: %+v", rep)
			}
			if fr.Value != rep.Frac.Value || fr.DualBound != rep.Frac.DualBound {
				t.Fatalf("frac certificates diverged: %v/%v vs %v/%v",
					rep.Frac.Value, rep.Frac.DualBound, fr.Value, fr.DualBound)
			}
			for i := range fr.X {
				if fr.X[i] != rep.Frac.X[i] {
					t.Fatalf("frac X diverged at %d", i)
				}
			}
		})

		t.Run("stream", func(t *testing.T) {
			res, err := StreamMax(NewSliceStream(g), g.N, b, Options{Seed: seed, Eps: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := SolveStream(context.Background(), NewSliceStream(g), g.N, b,
				Request{Algo: AlgoMax, Eps: 0.5, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sameEdges(t, "stream", res.EdgeIDs, rep.Stream.EdgeIDs)
			if res.Passes != rep.Stream.Passes || res.PeakWords != rep.Stream.PeakWords {
				t.Fatalf("stream observables diverged: %+v vs %+v", rep.Stream, res)
			}

			wres, err := StreamMaxWeight(NewSliceStream(g), g.N, b, Options{Seed: seed, Eps: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			wrep, err := SolveStream(context.Background(), NewSliceStream(g), g.N, b,
				Request{Algo: AlgoMaxWeight, Eps: 0.5, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sameEdges(t, "streamw", wres.EdgeIDs, wrep.Stream.EdgeIDs)
		})
	}
}

// TestSolveGreedyExposed: the greedy baseline is reachable through the
// unified facade and matches the internal implementation bit for bit.
func TestSolveGreedyExposed(t *testing.T) {
	g, b := testGraph(t)
	want := baseline.GreedyWeighted(g, b)
	rep, err := Solve(context.Background(), g, b, Request{Algo: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, "greedy", want.Edges(), rep.M.Edges())
	if rep.Size != want.Size() || rep.Weight != want.Weight() {
		t.Fatalf("greedy summary diverged: %d/%v vs %d/%v", rep.Size, rep.Weight, want.Size(), want.Weight())
	}
}

// TestSessionSolveMatchesOneShot: the session-aware unified path returns
// the same plans as the one-shot path, serves repeats from cache, and
// honors NoCache.
func TestSessionSolveMatchesOneShot(t *testing.T) {
	g, b := testGraph(t)
	req := Request{Algo: AlgoMaxWeight, Eps: 0.25, Seed: 11}

	want, err := Solve(context.Background(), g, b, req)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession()
	first, err := s.Solve(context.Background(), g, b, req)
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, "session", want.M.Edges(), first.M.Edges())
	if first.FromCache {
		t.Fatal("first session solve claimed a cache hit")
	}
	second, err := s.Solve(context.Background(), g, b, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("repeat session solve missed the cache")
	}
	sameEdges(t, "session-repeat", want.M.Edges(), second.M.Edges())

	nocache := req
	nocache.NoCache = true
	third, err := s.Solve(context.Background(), g, b, nocache)
	if err != nil {
		t.Fatal(err)
	}
	if third.FromCache {
		t.Fatal("NoCache solve was served from cache")
	}
	sameEdges(t, "session-nocache", want.M.Edges(), third.M.Edges())

	// Frac through the session: certificates identical to one-shot.
	fwant, err := Solve(context.Background(), g, b, Request{Algo: AlgoFrac, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fgot, err := s.Solve(context.Background(), g, b, Request{Algo: AlgoFrac, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fwant.Frac.Value != fgot.Frac.Value || fwant.Frac.DualBound != fgot.Frac.DualBound {
		t.Fatalf("session frac diverged: %+v vs %+v", fgot.Frac, fwant.Frac)
	}
}

// TestSolveWorkersDeterminism: Request.Workers reaches the drivers and
// does not change a single bit of the output.
func TestSolveWorkersDeterminism(t *testing.T) {
	g, b := testGraph(t)
	for _, algo := range []Algo{AlgoApprox, AlgoMax, AlgoMaxWeight} {
		serial, err := Solve(context.Background(), g, b, Request{Algo: algo, Seed: 5})
		if err != nil {
			t.Fatalf("%s serial: %v", algo, err)
		}
		parallel, err := Solve(context.Background(), g, b, Request{Algo: algo, Seed: 5, Workers: 4})
		if err != nil {
			t.Fatalf("%s workers=4: %v", algo, err)
		}
		sameEdges(t, string(algo)+" workers", serial.M.Edges(), parallel.M.Edges())
	}
}

// TestSolveProgress: the Progress callback fires at solver checkpoints
// with a monotone counter, on both the dense and streaming paths.
func TestSolveProgress(t *testing.T) {
	g, b := testGraph(t)
	var calls, last atomic.Int64
	mono := true
	req := Request{Algo: AlgoApprox, Seed: 2, Progress: func(p Progress) {
		calls.Add(1)
		if p.Checkpoints < last.Load() {
			mono = false
		}
		last.Store(p.Checkpoints)
	}}
	if _, err := Solve(context.Background(), g, b, req); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never fired")
	}
	if !mono {
		t.Fatal("progress checkpoints went backwards")
	}

	var streamCalls atomic.Int64
	sreq := Request{Algo: AlgoMax, Eps: 0.5, Seed: 2,
		Progress: func(Progress) { streamCalls.Add(1) }}
	if _, err := SolveStream(context.Background(), NewSliceStream(g), g.N, b, sreq); err != nil {
		t.Fatal(err)
	}
	if streamCalls.Load() == 0 {
		t.Fatal("stream progress callback never fired")
	}
}

// TestSolveValidation: the unified path rejects what the legacy matrix
// rejected, before any work happens.
func TestSolveValidation(t *testing.T) {
	g, b := testGraph(t)
	if _, err := Solve(context.Background(), g, b, Request{Algo: "nope"}); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, err := Solve(context.Background(), g, b, Request{Eps: math.NaN()}); err == nil {
		t.Error("NaN eps accepted")
	}
	if _, err := Solve(context.Background(), g, Budgets{1}, Request{}); err == nil {
		t.Error("short budget vector accepted")
	}
	if _, err := SolveStream(context.Background(), NewSliceStream(g), g.N, Budgets{1}, Request{}); err == nil {
		t.Error("stream short budget vector accepted")
	}
	if _, err := SolveStream(context.Background(), NewSliceStream(g), g.N, b, Request{Algo: AlgoApprox}); err == nil {
		t.Error("stream accepted a non-streaming algo")
	}
}

// TestStreamCtxCancel: the new streaming Ctx variants abort on an
// already-cancelled context.
func TestStreamCtxCancel(t *testing.T) {
	g, b := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := StreamMaxCtx(ctx, NewSliceStream(g), g.N, b, Options{Eps: 0.5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("StreamMaxCtx: %v, want context.Canceled", err)
	}
	if _, err := StreamMaxWeightCtx(ctx, NewSliceStream(g), g.N, b, Options{Eps: 0.5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("StreamMaxWeightCtx: %v, want context.Canceled", err)
	}
}
